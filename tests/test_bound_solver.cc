#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bounds/bound_engine.h"
#include "bounds/engine.h"
#include "bounds/normal_engine.h"
#include "relation/degree_sequence.h"
#include "util/random.h"

namespace lpb {
namespace {

ConcreteStatistic Stat(VarSet u, VarSet v, double p, double log_b) {
  ConcreteStatistic s;
  s.sigma = {u, v};
  s.p = p;
  s.log_b = log_b;
  return s;
}

// Triangle cardinalities: the AGM bound is 1.5 * log_b.
std::vector<ConcreteStatistic> TriangleStats(double log_b) {
  return {Stat(0, 0b011, 1.0, log_b), Stat(0, 0b110, 1.0, log_b),
          Stat(0, 0b101, 1.0, log_b)};
}

// Simple statistics for a path query over n variables, as in bench_engine.
std::vector<ConcreteStatistic> PathStats(int n) {
  std::vector<ConcreteStatistic> stats;
  for (int i = 0; i + 1 < n; ++i) {
    const VarSet u = VarBit(i), v = VarBit(i + 1);
    stats.push_back(Stat(0, u | v, 1.0, 10.0));
    stats.push_back(Stat(u, v, 2.0, 6.0));
    stats.push_back(Stat(v, u, 2.0, 6.0));
    stats.push_back(Stat(u, v, kInfNorm, 3.0));
  }
  return stats;
}

// Asserts that evaluating `compiled` at the values of `stats` reproduces
// the from-scratch reference result exactly (status, bound, certificate).
void ExpectMatchesReference(CompiledBound& compiled,
                            const std::vector<ConcreteStatistic>& stats,
                            const BoundResult& reference,
                            const std::string& context) {
  BoundResult result = compiled.Evaluate(ValuesOf(stats));
  ASSERT_EQ(result.status, reference.status) << context;
  if (reference.unbounded()) {
    EXPECT_EQ(result.log2_bound, kInfNorm) << context;
    return;
  }
  if (!reference.ok()) return;
  EXPECT_NEAR(result.log2_bound, reference.log2_bound, 1e-6) << context;
  // The witness certifies the bound against these statistics.
  ASSERT_EQ(result.weights.size(), stats.size()) << context;
  double certified = 0.0;
  for (size_t i = 0; i < stats.size(); ++i) {
    certified += result.weights[i] * stats[i].log_b;
  }
  EXPECT_NEAR(certified, result.log2_bound, 1e-5) << context;
  // h* is a feasible polymatroid witness achieving the bound.
  EXPECT_NEAR(result.h_opt[FullSet(compiled.structure().n)],
              result.log2_bound, 1e-6)
      << context;
}

TEST(BoundEngineRegistry, KnowsAllEngines) {
  for (std::string_view name : BoundEngineNames()) {
    const BoundEngine* engine = FindBoundEngine(name);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(engine->name(), name);
  }
  EXPECT_EQ(FindBoundEngine("no-such-engine"), nullptr);
}

TEST(BoundEngineRegistry, NormalRejectsNonSimpleShapes) {
  auto stats = TriangleStats(10.0);
  stats.push_back(Stat(0b011, 0b100, 2.0, 4.0));  // |U| = 2: not simple
  const BoundStructure structure = StructureOf(3, stats);
  EXPECT_FALSE(FindBoundEngine("normal")->Supports(structure));
  EXPECT_TRUE(FindBoundEngine("gamma")->Supports(structure));
  EXPECT_TRUE(FindBoundEngine("auto")->Supports(structure));
}

TEST(StructureKey, DistinguishesShapesAndCollapsesValues) {
  auto stats_a = TriangleStats(10.0);
  auto stats_b = TriangleStats(99.0);  // same shapes, different values
  EXPECT_EQ(StructureKey(StructureOf(3, stats_a)),
            StructureKey(StructureOf(3, stats_b)));
  auto stats_c = stats_a;
  stats_c[0].p = 2.0;
  EXPECT_NE(StructureKey(StructureOf(3, stats_a)),
            StructureKey(StructureOf(3, stats_c)));
  EXPECT_NE(StructureKey(StructureOf(3, stats_a)),
            StructureKey(StructureOf(4, stats_a)));
}

TEST(CompiledBound, TriangleMatchesAndReusesWitness) {
  auto stats = TriangleStats(10.0);
  auto compiled =
      FindBoundEngine("auto")->Compile(StructureOf(3, stats));
  ExpectMatchesReference(*compiled, stats, PolymatroidBound(3, stats),
                         "first");
  // Re-evaluations at scaled values keep the basis optimal: witness path.
  for (double log_b : {12.0, 8.0, 20.0}) {
    auto scaled = TriangleStats(log_b);
    ExpectMatchesReference(*compiled, scaled, PolymatroidBound(3, scaled),
                           "scaled");
  }
  const EvalCounters& c = compiled->counters();
  EXPECT_EQ(c.evaluations, 4u);
  EXPECT_EQ(c.cold_solves, 1u);
  EXPECT_GE(c.witness_hits, 3u);
}

// Randomized equivalence: compiled evaluation must exactly match the
// from-scratch engines across random simple-statistics instances,
// including value redraws that force the warm-start fallback.
TEST(CompiledBound, RandomSimpleInstancesMatchBothEngines) {
  Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.Uniform(4));  // 2..5
    const VarSet full = FullSet(n);
    std::vector<ConcreteStatistic> stats;
    // Cardinality assertions over random variable subsets.
    const int num_card = 1 + static_cast<int>(rng.Uniform(3));
    for (int k = 0; k < num_card; ++k) {
      VarSet v = 1 + static_cast<VarSet>(rng.Uniform(full));
      stats.push_back(Stat(0, v, 1.0, 2.0 + 10.0 * rng.NextDouble()));
    }
    // Simple conditionals with random norms.
    const int num_cond = static_cast<int>(rng.Uniform(5));
    for (int k = 0; k < num_cond; ++k) {
      const int u_var = static_cast<int>(rng.Uniform(n));
      VarSet v = 1 + static_cast<VarSet>(rng.Uniform(full));
      v &= ~VarBit(u_var);
      if (v == 0) continue;
      const double p = rng.NextDouble() < 0.3
                           ? kInfNorm
                           : 1.0 + std::floor(4.0 * rng.NextDouble());
      stats.push_back(Stat(VarBit(u_var), v, p, 1.0 + 8.0 * rng.NextDouble()));
    }

    auto compiled_auto =
        FindBoundEngine("auto")->Compile(StructureOf(n, stats));
    auto compiled_gamma =
        FindBoundEngine("gamma")->Compile(StructureOf(n, stats));
    for (int redraw = 0; redraw < 4; ++redraw) {
      if (redraw > 0) {
        for (ConcreteStatistic& s : stats) {
          // Mix gentle scalings with drastic redraws.
          s.log_b = redraw % 2 == 1 ? s.log_b * (0.8 + 0.4 * rng.NextDouble())
                                    : 0.5 + 12.0 * rng.NextDouble();
        }
      }
      const std::string context =
          "trial " + std::to_string(trial) + " redraw " +
          std::to_string(redraw);
      // Simple statistics: Γn and Nn agree (Theorem 6.1) and the compiled
      // paths must reproduce both.
      const BoundResult gamma_ref = PolymatroidBound(n, stats);
      const NormalBoundResult normal_ref = NormalPolymatroidBound(n, stats);
      ASSERT_EQ(gamma_ref.status, normal_ref.base.status) << context;
      ExpectMatchesReference(*compiled_auto, stats, normal_ref.base, context);
      ExpectMatchesReference(*compiled_gamma, stats, gamma_ref, context);
    }
  }
}

TEST(CompiledBound, UnboundedStructureStaysUnbounded) {
  // An ℓ∞ conditional alone never bounds h(X): the LP is unbounded for
  // every value, and after the first verdict the compiled bound
  // short-circuits without solving.
  std::vector<ConcreteStatistic> stats = {Stat(0b01, 0b10, kInfNorm, 5.0)};
  ASSERT_TRUE(NormalPolymatroidBound(2, stats).base.unbounded());
  auto compiled = FindBoundEngine("auto")->Compile(StructureOf(2, stats));
  BoundResult first = compiled->Evaluate({5.0});
  EXPECT_TRUE(first.unbounded());
  EXPECT_EQ(first.log2_bound, kInfNorm);
  BoundResult second = compiled->Evaluate({9.0});
  EXPECT_TRUE(second.unbounded());
  EXPECT_EQ(second.eval_path, LpEvalPath::kWitness);
  EXPECT_EQ(compiled->counters().witness_hits, 1u);
}

TEST(CompiledBound, CuttingPlaneModeMatchesFullLattice) {
  // Force the compiled Γn engine into cutting-plane mode at a size where
  // the full lattice is still cheap enough to serve as the reference.
  EngineOptions cut_options;
  cut_options.full_lattice_max_n = 3;
  const int n = 5;
  auto stats = PathStats(n);
  auto compiled =
      FindBoundEngine("gamma")->Compile(StructureOf(n, stats), cut_options);
  for (int redraw = 0; redraw < 3; ++redraw) {
    if (redraw > 0) {
      Rng rng(100 + redraw);
      for (ConcreteStatistic& s : stats) {
        s.log_b *= 0.5 + rng.NextDouble();
      }
    }
    ExpectMatchesReference(*compiled, stats, PolymatroidBound(n, stats),
                           "redraw " + std::to_string(redraw));
  }
}

TEST(CompiledBound, AgmFilterMatchesFilteredReference) {
  auto stats = PathStats(4);
  const auto agm_only = FilterAgmStatistics(stats);
  ASSERT_LT(agm_only.size(), stats.size());
  auto compiled = FindBoundEngine("agm")->Compile(StructureOf(4, stats));
  BoundResult result = compiled->Evaluate(ValuesOf(stats));
  BoundResult reference = PolymatroidBound(4, agm_only);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.log2_bound, reference.log2_bound, 1e-6);
  // Weights are aligned with the FULL statistics list: zero off-filter,
  // and the certificate still verifies against the full value vector.
  ASSERT_EQ(result.weights.size(), stats.size());
  double certified = 0.0;
  for (size_t i = 0; i < stats.size(); ++i) {
    if (!(stats[i].p == 1.0 && stats[i].sigma.u == 0)) {
      EXPECT_EQ(result.weights[i], 0.0) << i;
    }
    certified += result.weights[i] * stats[i].log_b;
  }
  EXPECT_NEAR(certified, result.log2_bound, 1e-5);
}

TEST(CompiledBound, PandaFilterMatchesFilteredReference) {
  auto stats = PathStats(4);
  const auto panda_only = FilterPandaStatistics(stats);
  ASSERT_LT(panda_only.size(), stats.size());
  auto compiled = FindBoundEngine("panda")->Compile(StructureOf(4, stats));
  BoundResult result = compiled->Evaluate(ValuesOf(stats));
  BoundResult reference = PolymatroidBound(4, panda_only);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.log2_bound, reference.log2_bound, 1e-6);
  // PANDA uses a subset of the statistics, so it can never beat the
  // all-norms bound.
  BoundResult all_norms = PolymatroidBound(4, stats);
  EXPECT_GE(result.log2_bound, all_norms.log2_bound - 1e-9);
}

TEST(CompiledBound, SkippingHOptKeepsBoundAndWeights) {
  auto stats = TriangleStats(10.0);
  auto compiled = FindBoundEngine("auto")->Compile(StructureOf(3, stats));
  BoundResult lean = compiled->Evaluate(ValuesOf(stats), /*want_h_opt=*/false);
  BoundResult rich = compiled->Evaluate(ValuesOf(stats), /*want_h_opt=*/true);
  ASSERT_TRUE(lean.ok());
  EXPECT_NEAR(lean.log2_bound, rich.log2_bound, 1e-9);
  EXPECT_EQ(lean.weights.size(), rich.weights.size());
  EXPECT_EQ(lean.h_opt.num_vars(), 0);   // not materialized
  EXPECT_EQ(rich.h_opt.num_vars(), 3);
}

}  // namespace
}  // namespace lpb
