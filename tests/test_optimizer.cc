#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <vector>

#include "datagen/job_gen.h"
#include "estimator/advisor.h"
#include "exec/hash_join.h"
#include "optimizer/join_order.h"
#include "query/parser.h"
#include "relation/catalog.h"

namespace lpb {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value());
  return *q;
}

Relation UnaryRelation(const std::string& name, Value rows) {
  Relation r(name, {"a"});
  for (Value i = 0; i < rows; ++i) r.AddRow({i});
  return r;
}

uint64_t PeakIntermediate(const HashJoinStats& s) {
  uint64_t m = 0;
  for (uint64_t v : s.intermediate_sizes) m = std::max(m, v);
  return m;
}

bool IsPermutation(const std::vector<int>& order, int n) {
  if (static_cast<int>(order.size()) != n) return false;
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (int a : order) {
    if (a < 0 || a >= n || seen[static_cast<size_t>(a)]) return false;
    seen[static_cast<size_t>(a)] = true;
  }
  return true;
}

// The cost-model arithmetic, recomputed independently of JoinCost so the
// exhaustive cross-checks don't inherit an optimizer bug.
double OperatorCost(const JoinOrderOptions& opt, double lrows, double rrows) {
  const double build = std::min(lrows, rrows);
  const double probe = std::max(lrows, rrows);
  const double hash =
      opt.hash_build_weight * build + opt.hash_probe_weight * probe;
  const double merge = opt.sort_weight * (lrows * std::log2(lrows + 2.0) +
                                          rrows * std::log2(rrows + 2.0));
  return std::min(hash, merge);
}

// Exhaustive minimum total cost over every bushy plan shape for `s`,
// pricing subplans with the same memoized cardinalities the DP used (so
// the check compares plan *choice*, not LP probe noise).
double BestBushyCost(AtomSet s, const std::map<AtomSet, DpEntry>& memo,
                     const JoinOrderOptions& opt,
                     std::map<AtomSet, double>& best) {
  auto cached = best.find(s);
  if (cached != best.end()) return cached->second;
  const DpEntry& e = memo.at(s);
  if (e.leaf_atom >= 0) return best[s] = e.rows;
  double out = std::numeric_limits<double>::infinity();
  const AtomSet low = VarBit(LowestVar(s));
  for (AtomSet left = (s - 1) & s; left != 0; left = (left - 1) & s) {
    if (!Intersects(left, low)) continue;  // each unordered pair once
    const AtomSet right = s & ~left;
    auto lit = memo.find(left);
    auto rit = memo.find(right);
    if (lit == memo.end() || rit == memo.end()) continue;
    if (!Intersects(lit->second.vars, rit->second.vars)) continue;
    const double c = BestBushyCost(left, memo, opt, best) +
                     BestBushyCost(right, memo, opt, best) +
                     OperatorCost(opt, lit->second.rows, rit->second.rows) +
                     e.rows;
    out = std::min(out, c);
  }
  return best[s] = out;
}

// Exhaustive minimum peak intermediate over every left-deep order whose
// prefixes stay connected (exactly the orders the DP searches): the
// driving leaf plus every prefix join output, cardinalities from the memo.
double BestLeftDeepPeak(const Query& q,
                        const std::map<AtomSet, DpEntry>& memo) {
  const int m = q.num_atoms();
  std::vector<int> perm(static_cast<size_t>(m));
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    AtomSet mask = 0;
    double peak = 0.0;
    bool ok = true;
    for (int i = 0; i < m; ++i) {
      mask |= VarBit(perm[static_cast<size_t>(i)]);
      auto it = memo.find(mask);
      if (it == memo.end()) {  // disconnected prefix: not a DP order
        ok = false;
        break;
      }
      peak = std::max(peak, it->second.rows);
    }
    if (ok) best = std::min(best, peak);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(JoinOrderOptimizer, TotalCostOptimalVsExhaustiveOnSmallJobQueries) {
  JobWorkloadOptions jopt;
  jopt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(jopt);
  CardinalityAdvisor advisor(wl.catalog);
  AdvisorCardinalityModel model(advisor);
  int tested = 0;
  for (const Query& q : wl.queries) {
    if (q.num_atoms() > 6) continue;
    JoinOrderOptimizer dp(q, model);
    const JoinPlan& plan = dp.Optimize();
    ASSERT_FALSE(plan.empty()) << q.name();
    std::map<AtomSet, double> best;
    const double exhaustive = BestBushyCost(
        FullSet(q.num_atoms()), dp.memo(), JoinOrderOptions{}, best);
    // Exact optimality up to the DP's eps-tie rule (costs within ~1e-5
    // relative are ties, so backend solver noise can't flip plans).
    EXPECT_NEAR(plan.cost(), exhaustive, exhaustive * 1e-4) << q.name();
    EXPECT_GE(plan.cost(), exhaustive * (1.0 - 1e-12)) << q.name();
    EXPECT_TRUE(IsPermutation(plan.AtomOrder(), q.num_atoms())) << q.name();
    ++tested;
  }
  EXPECT_GE(tested, 3);
}

TEST(JoinOrderOptimizer, PeakObjectiveOptimalVsExhaustiveOrders) {
  JobWorkloadOptions jopt;
  jopt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(jopt);
  CardinalityAdvisor advisor(wl.catalog);
  AdvisorCardinalityModel model(advisor);
  JoinOrderOptions opt;
  opt.left_deep = true;
  opt.objective = CostObjective::kPeakIntermediate;
  int tested = 0;
  for (const Query& q : wl.queries) {
    if (q.num_atoms() > 6) continue;
    JoinOrderOptimizer dp(q, model, opt);
    const JoinPlan& plan = dp.Optimize();
    const double exhaustive = BestLeftDeepPeak(q, dp.memo());
    EXPECT_NEAR(plan.cost(), exhaustive, exhaustive * 1e-4) << q.name();
    EXPECT_GE(plan.cost(), exhaustive * (1.0 - 1e-12)) << q.name();
    ++tested;
  }
  EXPECT_GE(tested, 3);
}

TEST(JoinOrderOptimizer, OneAdvisorBatchPerDpLevel) {
  JobWorkloadOptions jopt;
  jopt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(jopt);
  CardinalityAdvisor advisor(wl.catalog);
  AdvisorCardinalityModel model(advisor);
  int tested = 0;
  for (const Query& q : wl.queries) {
    if (q.num_atoms() > 8) continue;
    const AdvisorMetrics before = advisor.metrics();
    JoinOrderOptimizer dp(q, model);
    dp.Optimize();
    const AdvisorMetrics after = advisor.metrics();
    const OptimizerStats& stats = dp.stats();
    // Exactly one EstimateLog2Batch call per DP level, covering every
    // candidate of that level — verified against the advisor's own
    // counters, not just the optimizer's bookkeeping.
    EXPECT_EQ(after.batch_calls - before.batch_calls,
              static_cast<uint64_t>(stats.dp_levels))
        << q.name();
    EXPECT_EQ(after.batch_probes - before.batch_probes, stats.probes)
        << q.name();
    EXPECT_EQ(stats.batch_calls, static_cast<uint64_t>(stats.dp_levels));
    EXPECT_EQ(stats.dp_levels, q.num_atoms()) << q.name();
    uint64_t level_sum = 0;
    for (uint64_t p : stats.probes_per_level) level_sum += p;
    EXPECT_EQ(level_sum, stats.probes);
    ++tested;
    if (tested >= 4) break;
  }
  EXPECT_GE(tested, 2);
}

TEST(JoinOrderOptimizer, PlanBitwiseStableAcrossLpBackends) {
  JobWorkloadOptions jopt;
  jopt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(jopt);
  AdvisorOptions dense_opts;
  dense_opts.engine.simplex.backend = LpBackendKind::kDense;
  AdvisorOptions revised_opts;
  revised_opts.engine.simplex.backend = LpBackendKind::kRevised;
  CardinalityAdvisor dense_advisor(wl.catalog, dense_opts);
  CardinalityAdvisor revised_advisor(wl.catalog, revised_opts);
  AdvisorCardinalityModel dense_model(dense_advisor);
  AdvisorCardinalityModel revised_model(revised_advisor);
  int tested = 0;
  for (const Query& q : wl.queries) {
    if (q.num_atoms() > 7) continue;
    JoinOrderOptimizer dense_dp(q, dense_model);
    JoinOrderOptimizer revised_dp(q, revised_model);
    const JoinPlan& dense_plan = dense_dp.Optimize();
    const JoinPlan& revised_plan = revised_dp.Optimize();
    ASSERT_EQ(dense_plan.nodes.size(), revised_plan.nodes.size()) << q.name();
    for (size_t i = 0; i < dense_plan.nodes.size(); ++i) {
      const JoinPlan::Node& a = dense_plan.nodes[i];
      const JoinPlan::Node& b = revised_plan.nodes[i];
      EXPECT_EQ(a.atoms, b.atoms) << q.name() << " node " << i;
      EXPECT_EQ(a.left, b.left) << q.name() << " node " << i;
      EXPECT_EQ(a.right, b.right) << q.name() << " node " << i;
      EXPECT_EQ(a.leaf_atom, b.leaf_atom) << q.name() << " node " << i;
      EXPECT_EQ(a.method, b.method) << q.name() << " node " << i;
    }
    ++tested;
    if (tested >= 3) break;
  }
  EXPECT_GE(tested, 2);
}

TEST(JoinOrderOptimizer, PeakNotWorseThanGreedyOnJobScoringSet) {
  JobWorkloadOptions jopt;
  jopt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(jopt);
  CardinalityAdvisor advisor(wl.catalog);
  AdvisorCardinalityModel model(advisor);
  JoinOrderOptions opt;
  opt.left_deep = true;
  opt.objective = CostObjective::kPeakIntermediate;
  int scored = 0;
  for (const Query& q : wl.queries) {
    if (q.num_atoms() > 8) continue;
    JoinOrderOptimizer dp(q, model, opt);
    const JoinPlan& plan = dp.Optimize();
    const std::vector<int> greedy = GreedyJoinOrder(q, model);
    // The greedy order's prefixes are connected, so the order lives inside
    // the DP's left-deep search space: the DP's estimated peak can never
    // exceed greedy's. Verify on the *executed* intermediates.
    HashJoinStats dp_run = CountByHashJoin(q, wl.catalog, plan.AtomOrder());
    HashJoinStats greedy_run = CountByHashJoin(q, wl.catalog, greedy);
    ASSERT_TRUE(dp_run.ok) << q.name() << ": " << dp_run.error;
    ASSERT_TRUE(greedy_run.ok) << q.name() << ": " << greedy_run.error;
    EXPECT_EQ(dp_run.output_count, greedy_run.output_count) << q.name();
    EXPECT_LE(PeakIntermediate(dp_run), PeakIntermediate(greedy_run))
        << q.name();
    ++scored;
  }
  EXPECT_GE(scored, 5);
}

TEST(JoinOrderOptimizer, MemoAccountingOnThreeAtomChain) {
  Catalog db;
  Relation r("R", {"a", "b"});
  for (Value i = 0; i < 4; ++i) r.AddRow({i, i});
  db.Add(std::move(r));
  Relation s("S", {"a", "b"});
  for (Value i = 0; i < 6; ++i) s.AddRow({i, i});
  db.Add(std::move(s));
  Relation t("T", {"a", "b"});
  for (Value i = 0; i < 8; ++i) t.AddRow({i, i});
  db.Add(std::move(t));
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,W)");
  TraditionalCardinalityModel model(db);
  JoinOrderOptimizer dp(q, model);
  dp.Optimize();
  const OptimizerStats& stats = dp.stats();
  // Connected subsets of the chain R—S—T: three singletons, {R,S}, {S,T},
  // and the full set. {R,T} is disconnected — never probed, never
  // memoized.
  EXPECT_EQ(stats.dp_levels, 3);
  EXPECT_EQ(stats.batch_calls, 3u);
  EXPECT_EQ(stats.probes, 6u);
  ASSERT_EQ(stats.probes_per_level.size(), 3u);
  EXPECT_EQ(stats.probes_per_level[0], 3u);
  EXPECT_EQ(stats.probes_per_level[1], 2u);
  EXPECT_EQ(stats.probes_per_level[2], 1u);
  EXPECT_EQ(stats.memo_entries, 6u);
  EXPECT_EQ(dp.memo().count((1u << 0) | (1u << 2)), 0u);
  // Best-partition scans: one canonical pair each for {R,S} and {S,T};
  // three canonical pairs for the full set, of which ({R,T}, {S}) misses
  // the memo — so 5 pairs examined, 4 with both halves memoized.
  EXPECT_EQ(stats.partitions_tried, 5u);
  EXPECT_EQ(stats.memo_hits, 4u);
  EXPECT_EQ(stats.cross_partitions, 0u);
}

TEST(JoinOrderOptimizer, DisconnectedQueryPlansCheapestCrossProducts) {
  Catalog db;
  db.Add(UnaryRelation("A", 3));
  db.Add(UnaryRelation("Big", 50));
  db.Add(UnaryRelation("Small", 2));
  Query q = Parse("A(X), Big(Y), Small(Z)");
  TraditionalCardinalityModel model(db);
  JoinOrderOptions opt;
  opt.left_deep = true;
  JoinOrderOptimizer dp(q, model, opt);
  const JoinPlan& plan = dp.Optimize();
  ASSERT_FALSE(plan.empty());
  EXPECT_GT(dp.stats().cross_partitions, 0u);
  EXPECT_TRUE(IsPermutation(plan.AtomOrder(), 3));
  // Every join in a fully disconnected query is a cross product, and the
  // total-cost objective defers the big relation to the last join (its
  // only appearance in an intermediate is the unavoidable final output).
  EXPECT_EQ(plan.AtomOrder().back(), 1);
  HashJoinStats run = CountByHashJoin(q, db, plan.AtomOrder());
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.output_count, 3u * 50u * 2u);
}

TEST(GreedyJoinOrder, PicksCheapestDisconnectedExtension) {
  Catalog db;
  Relation r("R", {"a", "b"});
  for (Value i = 0; i < 4; ++i) r.AddRow({i, i});
  db.Add(std::move(r));
  Relation s("S", {"a", "b"});
  for (Value i = 0; i < 5; ++i) s.AddRow({i, i});
  db.Add(std::move(s));
  db.Add(UnaryRelation("Big", 50));
  db.Add(UnaryRelation("Small", 2));
  // R—S are connected; Big and Small are separate components. After the
  // connected prefix is exhausted, the old example grabbed
  // remaining.front() (Big). The fix batches all remaining atoms and
  // takes the min-bound one: Small first.
  Query q = Parse("R(X,Y), S(Y,Z), Big(W), Small(V)");
  TraditionalCardinalityModel model(db);
  const std::vector<int> order = GreedyJoinOrder(q, model, /*first_atom=*/0);
  ASSERT_TRUE(IsPermutation(order, 4));
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);  // the only connected extension
  EXPECT_EQ(order[2], 3);  // cheapest disconnected extension, not Big
  EXPECT_EQ(order[3], 2);
}

TEST(JoinOrderOptimizer, EmptyAndSingleAtomQueries) {
  Catalog db;
  db.Add(UnaryRelation("A", 7));
  TraditionalCardinalityModel model(db);
  Query empty("empty");
  JoinOrderOptimizer empty_dp(empty, model);
  EXPECT_TRUE(empty_dp.Optimize().empty());
  EXPECT_EQ(empty_dp.stats().atoms, 0);

  Query single = Parse("A(X)");
  JoinOrderOptimizer single_dp(single, model);
  const JoinPlan& plan = single_dp.Optimize();
  ASSERT_EQ(plan.nodes.size(), 1u);
  EXPECT_EQ(plan.AtomOrder(), std::vector<int>{0});
  EXPECT_DOUBLE_EQ(plan.log2_rows(), std::log2(7.0));
}

TEST(JoinOrderOptimizer, WideQueryFallsBackToGreedyChain) {
  Catalog db;
  db.Add(UnaryRelation("A", 5));
  Query q("wide");
  for (int i = 0; i <= kMaxAtoms; ++i) q.AddAtom("A", {"X"});
  ASSERT_GT(q.num_atoms(), kMaxAtoms);
  TraditionalCardinalityModel model(db);
  JoinOrderOptimizer dp(q, model);
  const JoinPlan& plan = dp.Optimize();
  EXPECT_TRUE(IsPermutation(plan.AtomOrder(), q.num_atoms()));
  // A left-deep chain over m atoms: m leaves + m-1 joins.
  EXPECT_EQ(plan.nodes.size(),
            static_cast<size_t>(2 * q.num_atoms() - 1));
  HashJoinStats run = CountByHashJoin(q, db, plan.AtomOrder());
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.output_count, 5u);
}

TEST(JoinOrderOptimizer, InducedSubqueryKeepsVariableBindings) {
  Catalog db;
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  Query sub = InducedSubquery(q, (1u << 0) | (1u << 2));
  ASSERT_EQ(sub.num_atoms(), 2);
  EXPECT_EQ(sub.atom(0).relation, "R");
  EXPECT_EQ(sub.atom(1).relation, "T");
  // X appears in both atoms and must stay one variable in the subquery.
  EXPECT_EQ(sub.num_vars(), 3);
  EXPECT_TRUE(Intersects(sub.atom(0).var_set(), sub.atom(1).var_set()));
}

}  // namespace
}  // namespace lpb
