// Property tests for the bound layer, on random hypergraphs over
// Zipf-skewed relations (util/zipf.h).
//
// Three laws every bound engine must obey, checked under both LP backends
// (dense tableau and revised simplex):
//   * soundness   — every bound upper-bounds the true join size computed
//                   by the worst-case-optimal join (exec/generic_join.h);
//   * monotonicity — the bound LP is a relaxation in each ℓp-norm input:
//                   raising any single log_b weakly raises the bound,
//                   lowering it weakly lowers it;
//   * dominance   — AGM uses only the cardinality subset of the
//                   statistics, so whenever both bounds apply the AGM
//                   bound is at least the full ℓp-norm bound.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "bounds/bound_engine.h"
#include "bounds/engine.h"
#include "bounds/normal_engine.h"
#include "exec/generic_join.h"
#include "query/query.h"
#include "relation/catalog.h"
#include "stats/collector.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

// A random hypergraph query over `num_vars` variables: each atom picks 2-3
// distinct variables; every variable is covered by at least one atom (the
// bounds need a finite cover, and CountJoin a full CQ).
Query RandomQuery(Rng& rng, int num_vars, int num_atoms,
                  std::vector<std::string>* rel_names) {
  const char* vars[] = {"V0", "V1", "V2", "V3", "V4", "V5"};
  Query q("random");
  rel_names->clear();
  for (int a = 0; a < num_atoms; ++a) {
    const int arity = 2 + static_cast<int>(rng.Uniform(2));
    std::vector<std::string> atom_vars;
    // A base variable chosen round-robin guarantees coverage.
    atom_vars.push_back(vars[(a * 2) % num_vars]);
    while (static_cast<int>(atom_vars.size()) < arity) {
      const char* v = vars[rng.Uniform(num_vars)];
      bool seen = false;
      for (const std::string& existing : atom_vars) seen |= existing == v;
      if (!seen) atom_vars.push_back(v);
    }
    std::string name = "E" + std::to_string(a);
    rel_names->push_back(name);
    q.AddAtom(name, atom_vars);
  }
  // Cover any variable the round-robin missed.
  VarSet covered = 0;
  for (const Atom& atom : q.atoms()) covered |= atom.var_set();
  for (int v = 0; v < q.num_vars(); ++v) {
    if (!(covered & VarBit(v))) {
      std::string name = "C" + std::to_string(v);
      rel_names->push_back(name);
      q.AddAtom(name, {q.var_name(v)});
    }
  }
  return q;
}

// Zipf-skewed relations matching the query's atom arities: heavy-tailed
// degrees are where the ℓp-norm bounds separate from AGM/PANDA.
Catalog RandomDb(Rng& rng, const Query& q,
                 const std::vector<std::string>& rel_names) {
  Catalog db;
  for (size_t a = 0; a < rel_names.size(); ++a) {
    const Atom& atom = q.atom(static_cast<int>(a));
    std::vector<std::string> attrs;
    for (size_t j = 0; j < atom.vars.size(); ++j) {
      attrs.push_back("c" + std::to_string(j));
    }
    Relation r(rel_names[a], attrs);
    const uint64_t domain = 8 + rng.Uniform(20);
    ZipfSampler zipf(domain, 0.3 + rng.NextDouble());
    const int rows = 30 + static_cast<int>(rng.Uniform(170));
    for (int i = 0; i < rows; ++i) {
      std::vector<Value> row;
      for (size_t j = 0; j < attrs.size(); ++j) row.push_back(zipf.Sample(rng));
      r.AddRow(row);
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  return db;
}

EngineOptions BackendOptions(LpBackendKind kind) {
  EngineOptions options;
  options.simplex.backend = kind;
  return options;
}

constexpr LpBackendKind kBackends[] = {LpBackendKind::kDense,
                                       LpBackendKind::kRevised};

TEST(BoundProperties, EveryBoundUpperBoundsTrueJoinSize) {
  Rng rng(71);
  for (int trial = 0; trial < 12; ++trial) {
    const int num_vars = 3 + static_cast<int>(rng.Uniform(3));
    std::vector<std::string> rel_names;
    Query q = RandomQuery(rng, num_vars, 2 + static_cast<int>(rng.Uniform(3)),
                          &rel_names);
    Catalog db = RandomDb(rng, q, rel_names);
    const uint64_t truth = CountJoin(q, db);
    const double log2_truth =
        truth == 0 ? 0.0 : std::log2(static_cast<double>(truth));
    const auto stats = CollectStatistics(q, db);
    const BoundStructure structure = StructureOf(q.num_vars(), stats);
    const std::vector<double> values = ValuesOf(stats);
    for (LpBackendKind backend : kBackends) {
      for (const char* engine_name : {"auto", "gamma", "agm", "panda"}) {
        const BoundEngine* engine = FindBoundEngine(engine_name);
        ASSERT_NE(engine, nullptr);
        if (!engine->Supports(structure)) continue;
        auto compiled = engine->Compile(structure, BackendOptions(backend));
        const BoundResult bound = compiled->Evaluate(values);
        if (truth == 0) continue;  // any bound is trivially sound
        ASSERT_TRUE(bound.ok() || bound.unbounded())
            << engine_name << " trial " << trial;
        if (bound.unbounded()) continue;
        EXPECT_GE(bound.log2_bound, log2_truth - 1e-6)
            << engine_name << " backend " << LpBackendName(backend)
            << " trial " << trial << " query " << q.ToString();
      }
    }
  }
}

TEST(BoundProperties, BoundIsMonotoneInEachInput) {
  Rng rng(172);
  for (int trial = 0; trial < 6; ++trial) {
    const int num_vars = 3 + static_cast<int>(rng.Uniform(2));
    std::vector<std::string> rel_names;
    Query q = RandomQuery(rng, num_vars, 2 + static_cast<int>(rng.Uniform(2)),
                          &rel_names);
    Catalog db = RandomDb(rng, q, rel_names);
    const auto stats = CollectStatistics(q, db);
    const BoundStructure structure = StructureOf(q.num_vars(), stats);
    const std::vector<double> values = ValuesOf(stats);
    for (LpBackendKind backend : kBackends) {
      auto compiled = FindBoundEngine("auto")->Compile(
          structure, BackendOptions(backend));
      const BoundResult base = compiled->Evaluate(values);
      ASSERT_TRUE(base.ok()) << "trial " << trial;
      for (size_t i = 0; i < values.size(); ++i) {
        // Loosening statistic i relaxes its constraint: weakly larger
        // bound. Tightening it weakly shrinks the bound. These perturbed
        // re-evaluations also exercise the witness/warm re-solve cascade
        // on the compiled bound.
        std::vector<double> up = values;
        up[i] += 0.75;
        const BoundResult looser = compiled->Evaluate(up);
        ASSERT_TRUE(looser.ok() || looser.unbounded());
        const double loose_bound =
            looser.unbounded() ? kInfNorm : looser.log2_bound;
        EXPECT_GE(loose_bound, base.log2_bound - 1e-6)
            << "stat " << i << " backend " << LpBackendName(backend)
            << " trial " << trial;
        std::vector<double> down = values;
        down[i] = std::max(0.0, down[i] - 0.75);
        const BoundResult tighter = compiled->Evaluate(down);
        if (tighter.ok()) {
          EXPECT_LE(tighter.log2_bound, base.log2_bound + 1e-6)
              << "stat " << i << " backend " << LpBackendName(backend)
              << " trial " << trial;
        }
      }
    }
  }
}

TEST(BoundProperties, AgmDominatesLpNormBound) {
  Rng rng(273);
  int comparable = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const int num_vars = 3 + static_cast<int>(rng.Uniform(3));
    std::vector<std::string> rel_names;
    Query q = RandomQuery(rng, num_vars, 2 + static_cast<int>(rng.Uniform(3)),
                          &rel_names);
    Catalog db = RandomDb(rng, q, rel_names);
    const auto stats = CollectStatistics(q, db);
    const BoundStructure structure = StructureOf(q.num_vars(), stats);
    const std::vector<double> values = ValuesOf(stats);
    for (LpBackendKind backend : kBackends) {
      const EngineOptions options = BackendOptions(backend);
      auto agm = FindBoundEngine("agm")->Compile(structure, options);
      auto full = FindBoundEngine("auto")->Compile(structure, options);
      const BoundResult agm_bound = agm->Evaluate(values);
      const BoundResult full_bound = full->Evaluate(values);
      if (!agm_bound.ok() || !full_bound.ok()) continue;
      ++comparable;
      // AGM sees only the cardinality statistics — a subset — so its LP is
      // a relaxation of the full one.
      EXPECT_GE(agm_bound.log2_bound, full_bound.log2_bound - 1e-6)
          << "backend " << LpBackendName(backend) << " trial " << trial
          << " query " << q.ToString();
    }
  }
  EXPECT_GT(comparable, 8);
}

}  // namespace
}  // namespace lpb
