// Sensitivity analysis and the estimator-comparison facade.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/normal_engine.h"
#include "bounds/sensitivity.h"
#include "estimator/comparison.h"
#include "exec/generic_join.h"
#include "query/parser.h"
#include "relation/catalog.h"
#include "stats/collector.h"
#include "util/random.h"

namespace lpb {
namespace {

ConcreteStatistic Stat(VarSet u, VarSet v, double p, double log_b) {
  ConcreteStatistic s;
  s.sigma = {u, v};
  s.p = p;
  s.log_b = log_b;
  return s;
}

TEST(Sensitivity, BindingStatisticsCarryTheWeight) {
  // Single join ℓ2 bound: both statistics are binding with weight 1; a
  // deliberately loose cardinality statistic has slack and weight 0.
  std::vector<ConcreteStatistic> stats = {
      Stat(0b010, 0b001, 2.0, 3.0),
      Stat(0b010, 0b100, 2.0, 3.0),
      Stat(0, 0b011, 1.0, 50.0),  // uselessly loose
  };
  auto bound = PolymatroidBound(3, stats);
  ASSERT_TRUE(bound.ok());
  auto entries = AnalyzeSensitivity(bound, stats);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_NEAR(entries[0].weight, 1.0, 1e-6);
  EXPECT_NEAR(entries[1].weight, 1.0, 1e-6);
  EXPECT_NEAR(entries[2].weight, 0.0, 1e-6);
  EXPECT_TRUE(entries[0].binding);
  EXPECT_TRUE(entries[1].binding);
  EXPECT_FALSE(entries[2].binding);
  EXPECT_GT(entries[2].slack, 10.0);
}

TEST(Sensitivity, WeightsPredictBoundChange) {
  // Tightening a statistic by delta lowers the bound by ~weight * delta
  // (exactly, while the basis stays optimal).
  std::vector<ConcreteStatistic> stats = {
      Stat(0b010, 0b001, 2.0, 3.0),
      Stat(0b010, 0b100, 2.0, 4.0),
  };
  auto before = PolymatroidBound(3, stats);
  ASSERT_TRUE(before.ok());
  auto entries = AnalyzeSensitivity(before, stats);
  const double delta = 0.25;
  stats[0].log_b -= delta;
  auto after = PolymatroidBound(3, stats);
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(after.log2_bound,
              before.log2_bound - entries[0].weight * delta, 1e-6);
}

TEST(Sensitivity, SlackIsNonNegativeAtOptimum) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ConcreteStatistic> stats;
    for (int i = 0; i < 3; ++i) {
      stats.push_back(Stat(0, VarBit(i) | VarBit((i + 1) % 3), 1.0,
                           4.0 + 4.0 * rng.NextDouble()));
      stats.push_back(Stat(VarBit(i), VarBit((i + 1) % 3),
                           1.0 + rng.Uniform(3), 1.0 + rng.NextDouble()));
    }
    auto bound = PolymatroidBound(3, stats);
    ASSERT_TRUE(bound.ok());
    for (const auto& e : AnalyzeSensitivity(bound, stats)) {
      EXPECT_GE(e.slack, -1e-6);
      EXPECT_GE(e.weight, -1e-6);
    }
  }
}

TEST(Sensitivity, FormatListsBindingFirst) {
  std::vector<ConcreteStatistic> stats = {
      Stat(0b010, 0b001, 2.0, 3.0),
      Stat(0, 0b011, 1.0, 50.0),
      Stat(0b010, 0b100, 2.0, 3.0),
  };
  stats[0].label = "R: (X|Y) p=2";
  stats[1].label = "R: card";
  stats[2].label = "S: (Z|Y) p=2";
  auto bound = PolymatroidBound(3, stats);
  ASSERT_TRUE(bound.ok());
  std::string report =
      FormatSensitivity(AnalyzeSensitivity(bound, stats), stats);
  // The two binding statistics come before the slack one.
  EXPECT_LT(report.find("R: (X|Y)"), report.find("R: card"));
  EXPECT_LT(report.find("S: (Z|Y)"), report.find("R: card"));
  EXPECT_NE(report.find("[binding]"), std::string::npos);
}

Catalog JoinDb() {
  Catalog db;
  Relation r("R", {"x", "y"});
  Relation s("S", {"y", "z"});
  Rng rng(7);
  for (int i = 0; i < 120; ++i) {
    r.AddRow({rng.Uniform(40), rng.Uniform(12)});
    s.AddRow({rng.Uniform(12), rng.Uniform(40)});
  }
  r.Deduplicate();
  s.Deduplicate();
  db.Add(std::move(r));
  db.Add(std::move(s));
  return db;
}

TEST(Comparison, ReportsAllEstimators) {
  Catalog db = JoinDb();
  Query q = *ParseQuery("R(X,Y), S(Y,Z)");
  auto reports = CompareEstimators(q, db);
  // true, AGM, PANDA, lp, traditional, DSB (single join on Y).
  ASSERT_EQ(reports.size(), 6u);
  EXPECT_EQ(reports[0].name, "true");
  double truth = reports[0].log2_value;
  for (const auto& r : reports) {
    if (r.is_upper_bound) {
      EXPECT_GE(r.log2_value, truth - 1e-6) << r.name;
    }
  }
}

TEST(Comparison, DsbOmittedForNonSingleJoins) {
  Catalog db = JoinDb();
  Relation t("T", {"z", "w"});
  t.AddRow({1, 2});
  db.Add(std::move(t));
  Query q = *ParseQuery("R(X,Y), S(Y,Z), T(Z,W)");
  auto reports = CompareEstimators(q, db);
  for (const auto& r : reports) EXPECT_NE(r.name, "DSB");
}

TEST(Comparison, TruthCanBeSkipped) {
  Catalog db = JoinDb();
  Query q = *ParseQuery("R(X,Y), S(Y,Z)");
  ComparisonOptions opt;
  opt.include_truth = false;
  auto reports = CompareEstimators(q, db, opt);
  for (const auto& r : reports) EXPECT_NE(r.name, "true");
}

TEST(Comparison, FormatIsHumanReadable) {
  Catalog db = JoinDb();
  Query q = *ParseQuery("R(X,Y), S(Y,Z)");
  std::string table = FormatComparison(CompareEstimators(q, db));
  EXPECT_NE(table.find("lp-norm bound"), std::string::npos);
  EXPECT_NE(table.find("(bound)"), std::string::npos);
  EXPECT_NE(table.find("x truth"), std::string::npos);
}

TEST(Comparison, OrderingLpBelowPandaBelowAgm) {
  Catalog db = JoinDb();
  Query q = *ParseQuery("R(X,Y), S(Y,Z)");
  auto reports = CompareEstimators(q, db);
  double agm = 0, panda = 0, lp = 0;
  for (const auto& r : reports) {
    if (r.name == "AGM {1}") agm = r.log2_value;
    if (r.name == "PANDA {1,inf}") panda = r.log2_value;
    if (r.name == "lp-norm bound") lp = r.log2_value;
  }
  EXPECT_LE(lp, panda + 1e-6);
  EXPECT_LE(panda, agm + 1e-6);
}

}  // namespace
}  // namespace lpb
