#include <gtest/gtest.h>

#include <cmath>

#include "datagen/alpha_beta.h"
#include "datagen/degree_realize.h"
#include "datagen/graph_gen.h"
#include "datagen/job_gen.h"
#include "query/hypergraph.h"
#include "relation/degree_sequence.h"

namespace lpb {
namespace {

TEST(GraphGen, RespectsEdgeCountAndSymmetry) {
  GraphSpec spec;
  spec.num_nodes = 500;
  spec.num_edges = 2000;
  spec.symmetric = true;
  Relation g = GeneratePowerLawGraph(spec);
  EXPECT_EQ(g.NumRows(), 4000u);  // both orientations
  // Symmetric: deg(dst|src) == deg(src|dst) as multisets.
  DegreeSequence out = ComputeDegreeSequence(g, {0}, {1});
  DegreeSequence in = ComputeDegreeSequence(g, {1}, {0});
  EXPECT_EQ(out.degrees(), in.degrees());
}

TEST(GraphGen, NoSelfLoopsByDefault) {
  GraphSpec spec;
  spec.num_nodes = 200;
  spec.num_edges = 800;
  Relation g = GeneratePowerLawGraph(spec);
  for (size_t i = 0; i < g.NumRows(); ++i) {
    EXPECT_NE(g.At(i, 0), g.At(i, 1));
  }
}

TEST(GraphGen, DeterministicPerSeed) {
  GraphSpec spec;
  spec.num_nodes = 300;
  spec.num_edges = 900;
  Relation a = GeneratePowerLawGraph(spec);
  Relation b = GeneratePowerLawGraph(spec);
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t i = 0; i < a.NumRows(); ++i) {
    EXPECT_EQ(a.At(i, 0), b.At(i, 0));
    EXPECT_EQ(a.At(i, 1), b.At(i, 1));
  }
}

TEST(GraphGen, SkewProducesHeavyTail) {
  GraphSpec spec;
  spec.num_nodes = 2000;
  spec.num_edges = 10000;
  spec.zipf_theta = 0.9;
  Relation g = GeneratePowerLawGraph(spec);
  DegreeSequence d = ComputeDegreeSequence(g, {0}, {1});
  const double avg =
      static_cast<double>(d.Total()) / static_cast<double>(d.size());
  EXPECT_GT(static_cast<double>(d.MaxDegree()), 8.0 * avg);
}

TEST(GraphGen, SnapStandInsAreWellFormed) {
  auto specs = SnapStandInSpecs();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].name, "ca_GrQc");
  for (const auto& s : specs) {
    EXPECT_GT(s.num_edges, s.num_nodes / 2);
  }
}

TEST(AlphaBeta, DegreeSequencesMatchDefinitionC1) {
  // α = β = 1/3, M = 729: M^α = 9 hubs of degree 9, rest degree 1.
  const uint64_t m = 729;
  Relation r = AlphaBetaRelation("R", m, 1.0 / 3, 1.0 / 3);
  for (auto cols : {std::pair<int, int>{0, 1}, std::pair<int, int>{1, 0}}) {
    DegreeSequence d = ComputeDegreeSequence(r, {cols.first}, {cols.second});
    ASSERT_GE(d.size(), 9u);
    for (int i = 0; i < 9; ++i) EXPECT_EQ(d.degrees()[i], 9u);
    for (size_t i = 9; i < d.size(); ++i) EXPECT_EQ(d.degrees()[i], 1u);
  }
  // |R| ≈ M.
  EXPECT_NEAR(static_cast<double>(r.NumRows()), static_cast<double>(m),
              static_cast<double>(m) * 0.05);
}

TEST(AlphaBeta, AlphaZeroSingleHub) {
  // (0, 2/3)-relation: one hub of degree M^{2/3}.
  const uint64_t m = 1000;
  Relation r = AlphaBetaRelation("S", m, 0.0, 2.0 / 3);
  DegreeSequence d = ComputeDegreeSequence(r, {0}, {1});
  EXPECT_EQ(d.MaxDegree(), 100u);
  EXPECT_EQ(d.degrees()[1], 1u);
}

TEST(AlphaBeta, NormsFollowTheClosedForms) {
  // Appendix C.5: ||deg||_q^q ≈ M for q <= p on the (1/(p+1), 1/(p+1))
  // instance (up to the integer rounding of M^α).
  const int p = 3;
  const uint64_t m = 4096;  // 8^4: M^{1/4} = 8 exactly
  Relation r = AlphaBetaRelation("R", m, 0.25, 0.25);
  DegreeSequence d = ComputeDegreeSequence(r, {0}, {1});
  // ||deg||_q^q = M^α·M^{qβ} + (M - 2M^{α+β}) = Θ(M) for q <= p, within a
  // factor of 2 (hence 1 in log2).
  for (int q = 1; q <= p; ++q) {
    const double norm_q_q = q * d.Log2NormP(q);
    EXPECT_NEAR(norm_q_q, std::log2(static_cast<double>(m)), 1.05)
        << "q=" << q;
  }
  EXPECT_EQ(d.MaxDegree(), 8u);  // M^{1/(p+1)}
}

TEST(DegreeRealize, FreshPartnersExactSequence) {
  std::vector<uint64_t> degrees = {5, 3, 3, 1};
  Relation r = RealizeDegreeSequence("R", degrees, PartnerMode::kFresh);
  DegreeSequence d = ComputeDegreeSequence(r, {0}, {1});
  EXPECT_EQ(d.degrees(), (std::vector<uint64_t>{5, 3, 3, 1}));
  DegreeSequence other = ComputeDegreeSequence(r, {1}, {0});
  EXPECT_EQ(other.MaxDegree(), 1u);
}

TEST(DegreeRealize, SharedPoolBoundsRightSide) {
  std::vector<uint64_t> degrees = {4, 4, 4};
  Relation r =
      RealizeDegreeSequence("R", degrees, PartnerMode::kSharedPool, 4);
  DegreeSequence d = ComputeDegreeSequence(r, {0}, {1});
  EXPECT_EQ(d.degrees(), (std::vector<uint64_t>{4, 4, 4}));
  EXPECT_EQ(r.DistinctCount({1}), 4u);  // only 4 right values exist
}

TEST(JobGen, WorkloadShape) {
  JobWorkloadOptions opt;
  opt.scale = 0.05;  // keep the test fast
  JobWorkload wl = GenerateJobWorkload(opt);
  EXPECT_EQ(wl.queries.size(), 33u);
  EXPECT_TRUE(wl.catalog.Has("title"));
  EXPECT_TRUE(wl.catalog.Has("cast_info"));
  EXPECT_TRUE(wl.catalog.Has("comp_cast_type"));
}

TEST(JobGen, AllQueriesParseAcyclicAndCovered) {
  JobWorkloadOptions opt;
  opt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(opt);
  for (const Query& q : wl.queries) {
    EXPECT_GE(q.num_atoms(), 4) << q.name();
    EXPECT_LE(q.num_atoms(), 14) << q.name();
    EXPECT_LE(q.num_vars(), kMaxVars) << q.name();
    Hypergraph h(q);
    EXPECT_TRUE(h.IsAlphaAcyclic()) << q.name() << ": " << q.ToString();
    EXPECT_TRUE(h.IsConnected()) << q.name();
    // Every referenced relation exists and arities match.
    for (const Atom& atom : q.atoms()) {
      ASSERT_TRUE(wl.catalog.Has(atom.relation)) << atom.relation;
      EXPECT_EQ(wl.catalog.Get(atom.relation).arity(),
                static_cast<int>(atom.vars.size()))
          << q.name() << " " << atom.relation;
    }
  }
}

TEST(JobGen, TitleIsAKey) {
  JobWorkloadOptions opt;
  opt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(opt);
  const Relation& title = wl.catalog.Get("title");
  EXPECT_EQ(title.DistinctCount({0}), title.NumRows());
  // So ||deg_title(kind|id)||_∞ = 1: the paper's key/FK observation.
  DegreeSequence d = ComputeDegreeSequence(title, {0}, {1});
  EXPECT_EQ(d.MaxDegree(), 1u);
}

TEST(JobGen, FactTablesAreSkewed) {
  JobWorkloadOptions opt;
  opt.scale = 0.25;
  JobWorkload wl = GenerateJobWorkload(opt);
  DegreeSequence d =
      ComputeDegreeSequence(wl.catalog.Get("cast_info"), {0}, {1, 2});
  const double avg =
      static_cast<double>(d.Total()) / static_cast<double>(d.size());
  EXPECT_GT(static_cast<double>(d.MaxDegree()), 3.0 * avg);
}

TEST(JobGen, QueryTextsStayInSync) {
  EXPECT_EQ(JobQueryTexts().size(), 33u);
}

}  // namespace
}  // namespace lpb
