#include <gtest/gtest.h>

#include <cmath>

#include "query/parser.h"
#include "relation/catalog.h"
#include "stats/collector.h"
#include "stats/statistic.h"

namespace lpb {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value()) << text;
  return *q;
}

Catalog TwoTableDb() {
  Catalog db;
  Relation r("R", {"a", "b"});
  r.AddRow({0, 10});
  r.AddRow({0, 11});
  r.AddRow({1, 10});
  db.Add(std::move(r));
  Relation s("S", {"a", "b"});
  s.AddRow({10, 7});
  s.AddRow({11, 7});
  s.AddRow({11, 8});
  s.AddRow({12, 9});
  db.Add(std::move(s));
  return db;
}

TEST(Statistic, LhsFormForFiniteP) {
  // (1/2) h(Y) + h(XY) - h(Y) for sigma = (X|Y), p = 2.
  ConcreteStatistic stat;
  stat.sigma = {0b10, 0b01};
  stat.p = 2.0;
  LinearForm f = stat.Lhs();
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].set, 0b11u);
  EXPECT_NEAR(f[0].coef, 1.0, 1e-12);
  EXPECT_EQ(f[1].set, 0b10u);
  EXPECT_NEAR(f[1].coef, -0.5, 1e-12);
}

TEST(Statistic, LhsFormForInfinity) {
  ConcreteStatistic stat;
  stat.sigma = {0b10, 0b01};
  stat.p = kInfNorm;
  LinearForm f = stat.Lhs();
  ASSERT_EQ(f.size(), 2u);
  EXPECT_NEAR(f[1].coef, -1.0, 1e-12);  // pure conditional h(XY) - h(Y)
}

TEST(Statistic, LhsFormForCardinality) {
  // U = ∅, p = 1: just h(V).
  ConcreteStatistic stat;
  stat.sigma = {0, 0b11};
  stat.p = 1.0;
  LinearForm f = stat.Lhs();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].set, 0b11u);
  EXPECT_NEAR(f[0].coef, 1.0, 1e-12);
}

TEST(Statistic, NormalizeRemovesOverlap) {
  Conditional c = Normalize({0b011, 0b110});
  EXPECT_EQ(c.u, 0b011u);
  EXPECT_EQ(c.v, 0b100u);
}

TEST(Statistic, SimplePredicate) {
  EXPECT_TRUE((Conditional{0, 0b11}).IsSimple());
  EXPECT_TRUE((Conditional{0b1, 0b10}).IsSimple());
  EXPECT_FALSE((Conditional{0b11, 0b100}).IsSimple());
}

TEST(Collector, MeasuresKnownNorms) {
  Query q = Parse("R(X,Y), S(Y,Z)");
  Catalog db = TwoTableDb();
  // deg_R(X|Y): Y=10 -> 2, Y=11 -> 1.
  EXPECT_NEAR(MeasureLog2Norm(q, 0, db, {0b010, 0b001}, 1.0),
              std::log2(3.0), 1e-9);
  EXPECT_NEAR(MeasureLog2Norm(q, 0, db, {0b010, 0b001}, 2.0),
              std::log2(std::sqrt(5.0)), 1e-9);
  EXPECT_NEAR(MeasureLog2Norm(q, 0, db, {0b010, 0b001}, kInfNorm),
              1.0, 1e-9);
  // deg_S(Z|Y): degrees (1,2,1) over Y=10,11,12.
  EXPECT_NEAR(MeasureLog2Norm(q, 1, db, {0b010, 0b100}, kInfNorm),
              1.0, 1e-9);
}

TEST(Collector, CardinalityStatisticsPresent) {
  Query q = Parse("R(X,Y), S(Y,Z)");
  Catalog db = TwoTableDb();
  CollectorOptions opt;
  opt.norms = {};
  opt.include_cardinalities = true;
  auto stats = CollectStatistics(q, db, opt);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_NEAR(stats[0].log_b, std::log2(3.0), 1e-9);
  EXPECT_NEAR(stats[1].log_b, std::log2(4.0), 1e-9);
  EXPECT_EQ(stats[0].guard_atom, 0);
  EXPECT_EQ(stats[1].guard_atom, 1);
}

TEST(Collector, SimpleStatsCountAndGuards) {
  Query q = Parse("R(X,Y), S(Y,Z)");
  Catalog db = TwoTableDb();
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, kInfNorm};
  opt.max_u_size = 1;
  auto stats = CollectStatistics(q, db, opt);
  // Per atom: 1 cardinality + 2 single-var conditionals x 3 norms = 7.
  EXPECT_EQ(stats.size(), 14u);
  EXPECT_TRUE(AllSimple(stats));
}

TEST(Collector, MaxUSizeTwoEmitsPairConditionals) {
  Query q = Parse("T(A,B,C)");
  Catalog db;
  Relation t("T", {"a", "b", "c"});
  t.AddRow({0, 0, 1});
  t.AddRow({0, 1, 2});
  db.Add(std::move(t));
  CollectorOptions opt;
  opt.norms = {2.0};
  opt.max_u_size = 2;
  opt.include_cardinalities = false;
  auto stats = CollectStatistics(q, db, opt);
  // U of size 1: 3 choices; size 2: 3 choices -> 6 statistics.
  EXPECT_EQ(stats.size(), 6u);
  EXPECT_FALSE(AllSimple(stats));
}

TEST(Collector, SelfJoinUsesPerAtomGuards) {
  Query q = Parse("R(X,Y), R(Y,Z)");
  Catalog db = TwoTableDb();
  CollectorOptions opt;
  opt.norms = {kInfNorm};
  opt.include_cardinalities = false;
  auto stats = CollectStatistics(q, db, opt);
  EXPECT_EQ(stats.size(), 4u);
  // Both atoms guard statistics over their own variable sets.
  EXPECT_EQ(stats[0].guard_atom, 0);
  EXPECT_EQ(stats[2].guard_atom, 1);
}

TEST(Collector, LabelsAreHumanReadable) {
  Query q = Parse("R(X,Y)");
  Catalog db = TwoTableDb();
  CollectorOptions opt;
  opt.norms = {2.0};
  opt.include_cardinalities = false;
  auto stats = CollectStatistics(q, db, opt);
  ASSERT_FALSE(stats.empty());
  EXPECT_NE(stats[0].label.find("R:"), std::string::npos);
  EXPECT_NE(stats[0].label.find("p=2"), std::string::npos);
}

TEST(Collector, RepeatedVariableAtom) {
  // R(X,X): statistics must still be collectable (first column is used).
  Query q = Parse("R(X,X)");
  Catalog db = TwoTableDb();
  CollectorOptions opt;
  opt.norms = {1.0};
  auto stats = CollectStatistics(q, db, opt);
  ASSERT_FALSE(stats.empty());
  // Cardinality = |Π_X(R)| = 2 distinct values in column a.
  EXPECT_NEAR(stats[0].log_b, 1.0, 1e-9);
}

}  // namespace
}  // namespace lpb
