// Domain example: join ordering driven by pessimistic bounds.
//
// For a JOB-style star query, runs the src/optimizer/ JoinOrderOptimizer
// (DPsize over connected subgraphs, one batched advisor call per DP
// level) twice — once with the ℓp-norm bound model and once with the
// traditional uniformity/independence model — plus the greedy baseline,
// executes all three plans through the hash-join evaluator, and reports
// the actual peak intermediate sizes. This is the paper's motivating
// application (Sec 1): optimizers pick plans by intermediate-size
// estimates, and underestimates cause bad plans.
//
// Every probe goes through one shared CardinalityAdvisor, which is
// exactly the workload the compile-once/evaluate-many pipeline targets:
// each DP level prices *all* its candidate subplans in ONE
// EstimateLog2Batch call, so candidates sharing a statistics structure
// are re-priced as one block under one lock. A final what-if sweep
// batches hypothetical statistics deltas against the query's compiled
// bound, the optimizer-integration pattern the batch API exists for. The
// advisor's counters at the end make the reuse visible.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "datagen/job_gen.h"
#include "estimator/advisor.h"
#include "estimator/traditional.h"
#include "exec/hash_join.h"
#include "optimizer/join_order.h"

using namespace lpb;

namespace {

uint64_t PeakIntermediate(const HashJoinStats& s) {
  uint64_t m = 0;
  for (uint64_t v : s.intermediate_sizes) m = std::max(m, v);
  return m;
}

void PrintOrder(const char* label, const Query& q,
                const std::vector<int>& order) {
  std::printf("%s", label);
  for (int a : order) std::printf("%s ", q.atom(a).relation.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  JobWorkloadOptions jopt;
  jopt.scale = 0.15;
  JobWorkload wl = GenerateJobWorkload(jopt);
  CardinalityAdvisor advisor(wl.catalog);
  const Query& q = wl.queries[8];  // q9: cast_info ⋈ movie_companies ⋈ ...
  std::printf("query %s: %s\n\n", q.name().c_str(), q.ToString().c_str());

  // Left-deep bottleneck DP: minimize the peak materialized intermediate,
  // the metric the executed HashJoinStats::intermediate_sizes measures.
  JoinOrderOptions opt;
  opt.left_deep = true;
  opt.objective = CostObjective::kPeakIntermediate;

  AdvisorCardinalityModel bound_model(advisor);
  JoinOrderOptimizer bound_dp(q, bound_model, opt);
  const JoinPlan& bound_plan = bound_dp.Optimize();

  TraditionalCardinalityModel trad_model(wl.catalog);
  JoinOrderOptimizer trad_dp(q, trad_model, opt);
  const JoinPlan& trad_plan = trad_dp.Optimize();

  // The greedy baseline rides the same module (and inherits its
  // cheapest-disconnected-extension fix).
  const std::vector<int> greedy_order = GreedyJoinOrder(q, bound_model);

  PrintOrder("bound-driven DP order:  ", q, bound_plan.AtomOrder());
  PrintOrder("traditional DP order:   ", q, trad_plan.AtomOrder());
  PrintOrder("greedy bound order:     ", q, greedy_order);
  std::printf("bound-driven plan: %s\n", bound_plan.ToString(q).c_str());
  std::printf(
      "DP: %d levels, %llu probes in %llu batches, %llu memo entries\n\n",
      bound_dp.stats().dp_levels,
      static_cast<unsigned long long>(bound_dp.stats().probes),
      static_cast<unsigned long long>(bound_dp.stats().batch_calls),
      static_cast<unsigned long long>(bound_dp.stats().memo_entries));

  // Execute all the plans and score what actually materialized.
  HashJoinStats bound_run = CountByHashJoin(q, wl.catalog,
                                            bound_plan.AtomOrder());
  HashJoinStats trad_run = CountByHashJoin(q, wl.catalog,
                                           trad_plan.AtomOrder());
  HashJoinStats greedy_run = CountByHashJoin(q, wl.catalog, greedy_order);
  HashJoinStats naive_run = CountByHashJoin(q, wl.catalog);
  if (!bound_run.ok || !trad_run.ok || !greedy_run.ok || !naive_run.ok) {
    std::printf("plan execution failed: %s\n",
                (!bound_run.ok   ? bound_run.error
                 : !trad_run.ok  ? trad_run.error
                 : !greedy_run.ok ? greedy_run.error
                                  : naive_run.error)
                    .c_str());
    return 1;
  }
  const bool agree = bound_run.output_count == trad_run.output_count &&
                     bound_run.output_count == greedy_run.output_count &&
                     bound_run.output_count == naive_run.output_count;
  std::printf("output size: %llu (all plans agree: %s)\n",
              static_cast<unsigned long long>(bound_run.output_count),
              agree ? "yes" : "NO");
  std::printf("peak intermediate, bound-driven DP plan:  %llu\n",
              static_cast<unsigned long long>(PeakIntermediate(bound_run)));
  std::printf("peak intermediate, traditional DP plan:   %llu\n",
              static_cast<unsigned long long>(PeakIntermediate(trad_run)));
  std::printf("peak intermediate, greedy bound plan:     %llu\n",
              static_cast<unsigned long long>(PeakIntermediate(greedy_run)));
  std::printf("peak intermediate, textual-order plan:    %llu\n",
              static_cast<unsigned long long>(PeakIntermediate(naive_run)));
  std::printf("traditional estimate of the output: %.0f (truth %llu)\n",
              TraditionalEstimate(q, wl.catalog),
              static_cast<unsigned long long>(bound_run.output_count));

  // Batched what-if probing: how sensitive is the plan's output bound to
  // each statistic? Scale every statistic down by 2x / 4x in turn (as if
  // a predicate filtered that relation) and bound all scenarios in ONE
  // advisor call — the per-structure batch path re-prices the whole block
  // through the compiled bound's cached factorization.
  {
    const auto explanation = advisor.Explain(q);
    const std::vector<double> base = ValuesOf(explanation.stats);
    std::vector<std::vector<double>> scenarios;
    std::vector<size_t> scenario_stat;
    scenarios.push_back(base);
    scenario_stat.push_back(0);
    for (size_t j = 0; j < base.size(); ++j) {
      if (base[j] < 2.0) continue;  // nothing left to filter away
      for (double delta : {-1.0, -2.0}) {  // log2 deltas: 2x and 4x smaller
        std::vector<double> values = base;
        values[j] += delta;
        scenarios.push_back(std::move(values));
        scenario_stat.push_back(j);
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<double> what_if = advisor.EstimateLog2Batch(q, scenarios);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf(
        "\nwhat-if sweep: %zu scenarios in %.2f ms (%.0f probes/s); base "
        "bound 2^%.1f",
        what_if.size(), secs * 1e3,
        static_cast<double>(what_if.size()) / secs, what_if[0]);
    if (what_if.size() > 1) {
      size_t most_sensitive = 1;
      for (size_t k = 2; k < what_if.size(); ++k) {
        if (what_if[k] < what_if[most_sensitive]) most_sensitive = k;
      }
      const size_t stat_idx = scenario_stat[most_sensitive];
      std::printf(", best 2^%.1f by shrinking stat #%zu (%s)",
                  what_if[most_sensitive], stat_idx,
                  explanation.stats[stat_idx].label.c_str());
    }
    std::printf("\n");
  }

  // One Explain for the backend name, *before* the metrics snapshot so the
  // counters printed below include it.
  const std::string lp_backend = advisor.Explain(q).lp_backend;
  const AdvisorMetrics m = advisor.metrics();
  std::printf(
      "\nadvisor: %llu estimates in %llu batches over %zu compiled "
      "structures (hits %llu / misses %llu); eval paths: witness=%llu "
      "warm=%llu cold=%llu; lp backend: %s\n",
      static_cast<unsigned long long>(m.estimates),
      static_cast<unsigned long long>(m.batch_calls),
      advisor.CompiledCacheSize(),
      static_cast<unsigned long long>(m.compiled_hits),
      static_cast<unsigned long long>(m.compiled_misses),
      static_cast<unsigned long long>(m.witness_hits),
      static_cast<unsigned long long>(m.warm_resolves),
      static_cast<unsigned long long>(m.cold_solves), lp_backend.c_str());
  return 0;
}
