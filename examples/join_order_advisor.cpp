// Domain example: a join-order advisor driven by pessimistic bounds.
//
// For a JOB-style star query, ranks left-deep join orders by the ℓp-norm
// bound on each prefix (instead of error-prone traditional estimates) and
// reports the actual intermediate sizes of the chosen vs the naive plan —
// the paper's motivating application (Sec 1: optimizers pick plans by
// intermediate-size estimates, and underestimates cause bad plans).
//
// Every prefix bound goes through one shared CardinalityAdvisor, which is
// exactly the workload the compile-once/evaluate-many pipeline targets:
// the greedy search probes many prefixes whose statistic structures
// repeat, so most estimates reuse a compiled bound and its cached dual
// witness — and each greedy step asks for *all* candidate extensions at
// once through EstimateLog2Batch, so candidates sharing a statistics
// structure are re-priced as one block under one lock. A final what-if
// sweep batches hypothetical statistics deltas against the chosen plan's
// compiled bound, the optimizer-integration pattern the batch API exists
// for. The advisor's counters at the end make the reuse visible.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "datagen/job_gen.h"
#include "estimator/advisor.h"
#include "estimator/traditional.h"
#include "exec/hash_join.h"

using namespace lpb;

namespace {

// The sub-query formed by a prefix of atoms.
Query PrefixQuery(const Query& q, const std::vector<int>& prefix) {
  Query sub("prefix");
  for (int a : prefix) {
    std::vector<std::string> names;
    for (int v : q.atom(a).vars) names.push_back(q.var_name(v));
    sub.AddAtom(q.atom(a).relation, names);
  }
  return sub;
}

}  // namespace

int main() {
  JobWorkloadOptions jopt;
  jopt.scale = 0.15;
  JobWorkload wl = GenerateJobWorkload(jopt);
  CardinalityAdvisor advisor(wl.catalog);
  const Query& q = wl.queries[8];  // q9: cast_info ⋈ movie_companies ⋈ ...
  std::printf("query %s: %s\n\n", q.name().c_str(), q.ToString().c_str());

  // Greedy bound-driven order: start from the atom with the smallest
  // relation; repeatedly append the connected atom minimizing the prefix
  // bound.
  std::vector<int> remaining(q.num_atoms());
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<int> order;
  int first = 0;
  for (int a : remaining) {
    if (wl.catalog.Get(q.atom(a).relation).NumRows() <
        wl.catalog.Get(q.atom(first).relation).NumRows()) {
      first = a;
    }
  }
  order.push_back(first);
  remaining.erase(std::find(remaining.begin(), remaining.end(), first));
  while (!remaining.empty()) {
    VarSet covered = 0;
    for (int a : order) covered |= q.atom(a).var_set();
    // All candidate extensions of this step, bounded in one batched call:
    // candidates share statistic structures, so the advisor groups them
    // and re-prices each group's values as one block.
    std::vector<int> candidates;
    std::vector<Query> probes;
    for (int a : remaining) {
      if (!Intersects(q.atom(a).var_set(), covered) && remaining.size() > 1) {
        continue;  // keep the plan connected while possible
      }
      std::vector<int> prefix = order;
      prefix.push_back(a);
      candidates.push_back(a);
      probes.push_back(PrefixQuery(q, prefix));
    }
    int best = -1;
    if (!candidates.empty()) {
      const std::vector<double> bounds = advisor.EstimateLog2Batch(probes);
      size_t best_k = 0;
      for (size_t k = 1; k < bounds.size(); ++k) {
        if (bounds[k] < bounds[best_k]) best_k = k;
      }
      best = candidates[best_k];
    }
    if (best < 0) best = remaining.front();
    order.push_back(best);
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));
  }

  std::printf("bound-driven order: ");
  for (int a : order) std::printf("%s ", q.atom(a).relation.c_str());
  std::printf("\n");

  HashJoinStats advised = CountByHashJoin(q, wl.catalog, order);
  HashJoinStats naive = CountByHashJoin(q, wl.catalog);
  auto peak = [](const HashJoinStats& s) {
    uint64_t m = 0;
    for (uint64_t v : s.intermediate_sizes) m = std::max(m, v);
    return m;
  };
  std::printf("output size: %llu (both plans agree: %s)\n",
              static_cast<unsigned long long>(advised.output_count),
              advised.output_count == naive.output_count ? "yes" : "NO");
  std::printf("peak intermediate, bound-driven plan: %llu\n",
              static_cast<unsigned long long>(peak(advised)));
  std::printf("peak intermediate, textual-order plan: %llu\n",
              static_cast<unsigned long long>(peak(naive)));
  std::printf("traditional estimate of the output: %.0f (truth %llu)\n",
              TraditionalEstimate(q, wl.catalog),
              static_cast<unsigned long long>(advised.output_count));

  // Batched what-if probing: how sensitive is the plan's output bound to
  // each statistic? Scale every statistic down by 2x / 4x in turn (as if
  // a predicate filtered that relation) and bound all scenarios in ONE
  // advisor call — the per-structure batch path re-prices the whole block
  // through the compiled bound's cached factorization.
  {
    const auto explanation = advisor.Explain(q);
    const std::vector<double> base = ValuesOf(explanation.stats);
    std::vector<std::vector<double>> scenarios;
    std::vector<size_t> scenario_stat;
    scenarios.push_back(base);
    scenario_stat.push_back(0);
    for (size_t j = 0; j < base.size(); ++j) {
      if (base[j] < 2.0) continue;  // nothing left to filter away
      for (double delta : {-1.0, -2.0}) {  // log2 deltas: 2x and 4x smaller
        std::vector<double> values = base;
        values[j] += delta;
        scenarios.push_back(std::move(values));
        scenario_stat.push_back(j);
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<double> what_if = advisor.EstimateLog2Batch(q, scenarios);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf(
        "\nwhat-if sweep: %zu scenarios in %.2f ms (%.0f probes/s); base "
        "bound 2^%.1f",
        what_if.size(), secs * 1e3,
        static_cast<double>(what_if.size()) / secs, what_if[0]);
    if (what_if.size() > 1) {
      size_t most_sensitive = 1;
      for (size_t k = 2; k < what_if.size(); ++k) {
        if (what_if[k] < what_if[most_sensitive]) most_sensitive = k;
      }
      const size_t stat_idx = scenario_stat[most_sensitive];
      std::printf(", best 2^%.1f by shrinking stat #%zu (%s)",
                  what_if[most_sensitive], stat_idx,
                  explanation.stats[stat_idx].label.c_str());
    }
    std::printf("\n");
  }

  // One Explain for the backend name, *before* the metrics snapshot so the
  // counters printed below include it.
  const std::string lp_backend = advisor.Explain(q).lp_backend;
  const AdvisorMetrics m = advisor.metrics();
  std::printf(
      "\nadvisor: %llu prefix estimates over %zu compiled structures "
      "(hits %llu / misses %llu); eval paths: witness=%llu warm=%llu "
      "cold=%llu; lp backend: %s\n",
      static_cast<unsigned long long>(m.estimates),
      advisor.CompiledCacheSize(),
      static_cast<unsigned long long>(m.compiled_hits),
      static_cast<unsigned long long>(m.compiled_misses),
      static_cast<unsigned long long>(m.witness_hits),
      static_cast<unsigned long long>(m.warm_resolves),
      static_cast<unsigned long long>(m.cold_solves), lp_backend.c_str());
  return 0;
}
