// Domain example: a join-order advisor driven by pessimistic bounds.
//
// For a JOB-style star query, ranks left-deep join orders by the ℓp-norm
// bound on each prefix (instead of error-prone traditional estimates) and
// reports the actual intermediate sizes of the chosen vs the naive plan —
// the paper's motivating application (Sec 1: optimizers pick plans by
// intermediate-size estimates, and underestimates cause bad plans).
//
// Every prefix bound goes through one shared CardinalityAdvisor, which is
// exactly the workload the compile-once/evaluate-many pipeline targets:
// the greedy search probes many prefixes whose statistic structures
// repeat, so most estimates reuse a compiled bound and its cached dual
// witness. The advisor's counters at the end make the reuse visible.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "datagen/job_gen.h"
#include "estimator/advisor.h"
#include "estimator/traditional.h"
#include "exec/hash_join.h"

using namespace lpb;

namespace {

// Bound for the sub-query formed by a prefix of atoms.
double PrefixBoundLog2(const Query& q, CardinalityAdvisor& advisor,
                       const std::vector<int>& prefix) {
  Query sub("prefix");
  for (int a : prefix) {
    std::vector<std::string> names;
    for (int v : q.atom(a).vars) names.push_back(q.var_name(v));
    sub.AddAtom(q.atom(a).relation, names);
  }
  return advisor.EstimateLog2(sub);
}

}  // namespace

int main() {
  JobWorkloadOptions jopt;
  jopt.scale = 0.15;
  JobWorkload wl = GenerateJobWorkload(jopt);
  CardinalityAdvisor advisor(wl.catalog);
  const Query& q = wl.queries[8];  // q9: cast_info ⋈ movie_companies ⋈ ...
  std::printf("query %s: %s\n\n", q.name().c_str(), q.ToString().c_str());

  // Greedy bound-driven order: start from the atom with the smallest
  // relation; repeatedly append the connected atom minimizing the prefix
  // bound.
  std::vector<int> remaining(q.num_atoms());
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<int> order;
  int first = 0;
  for (int a : remaining) {
    if (wl.catalog.Get(q.atom(a).relation).NumRows() <
        wl.catalog.Get(q.atom(first).relation).NumRows()) {
      first = a;
    }
  }
  order.push_back(first);
  remaining.erase(std::find(remaining.begin(), remaining.end(), first));
  while (!remaining.empty()) {
    int best = -1;
    double best_bound = 0.0;
    VarSet covered = 0;
    for (int a : order) covered |= q.atom(a).var_set();
    for (int a : remaining) {
      if (!Intersects(q.atom(a).var_set(), covered) && remaining.size() > 1) {
        continue;  // keep the plan connected while possible
      }
      std::vector<int> prefix = order;
      prefix.push_back(a);
      const double b = PrefixBoundLog2(q, advisor, prefix);
      if (best < 0 || b < best_bound) {
        best = a;
        best_bound = b;
      }
    }
    if (best < 0) best = remaining.front();
    order.push_back(best);
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));
  }

  std::printf("bound-driven order: ");
  for (int a : order) std::printf("%s ", q.atom(a).relation.c_str());
  std::printf("\n");

  HashJoinStats advised = CountByHashJoin(q, wl.catalog, order);
  HashJoinStats naive = CountByHashJoin(q, wl.catalog);
  auto peak = [](const HashJoinStats& s) {
    uint64_t m = 0;
    for (uint64_t v : s.intermediate_sizes) m = std::max(m, v);
    return m;
  };
  std::printf("output size: %llu (both plans agree: %s)\n",
              static_cast<unsigned long long>(advised.output_count),
              advised.output_count == naive.output_count ? "yes" : "NO");
  std::printf("peak intermediate, bound-driven plan: %llu\n",
              static_cast<unsigned long long>(peak(advised)));
  std::printf("peak intermediate, textual-order plan: %llu\n",
              static_cast<unsigned long long>(peak(naive)));
  std::printf("traditional estimate of the output: %.0f (truth %llu)\n",
              TraditionalEstimate(q, wl.catalog),
              static_cast<unsigned long long>(advised.output_count));

  // One Explain for the backend name, *before* the metrics snapshot so the
  // counters printed below include it.
  const std::string lp_backend = advisor.Explain(q).lp_backend;
  const AdvisorMetrics m = advisor.metrics();
  std::printf(
      "\nadvisor: %llu prefix estimates over %zu compiled structures "
      "(hits %llu / misses %llu); eval paths: witness=%llu warm=%llu "
      "cold=%llu; lp backend: %s\n",
      static_cast<unsigned long long>(m.estimates),
      advisor.CompiledCacheSize(),
      static_cast<unsigned long long>(m.compiled_hits),
      static_cast<unsigned long long>(m.compiled_misses),
      static_cast<unsigned long long>(m.witness_hits),
      static_cast<unsigned long long>(m.warm_resolves),
      static_cast<unsigned long long>(m.cold_solves), lp_backend.c_str());
  return 0;
}
