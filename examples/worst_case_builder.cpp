// Domain example: auditing how tight a bound is by *constructing* the
// worst-case database (Sec 6 of the paper).
//
// Given a query and a statistics profile (as a DBA might assert about a
// production workload), builds the normal database that actually attains
// the polymatroid bound — proving to the user that the bound cannot be
// improved without more statistics.
#include <cmath>
#include <cstdio>

#include "bounds/normal_engine.h"
#include "bounds/worst_case.h"
#include "entropy/relation_entropy.h"
#include "exec/generic_join.h"
#include "query/parser.h"

using namespace lpb;

namespace {

ConcreteStatistic Stat(const Query& q, const char* u, const char* v, double p,
                       double log_b) {
  ConcreteStatistic s;
  s.sigma.u = *u ? VarBit(q.VarIndex(u)) : 0;
  s.sigma.v = VarBit(q.VarIndex(v));
  s.p = p;
  s.log_b = log_b;
  return s;
}

}  // namespace

int main() {
  Query q = *ParseQuery("R(X,Y), S(Y,Z)");
  // Asserted statistics: both join-column degree sequences have
  // ||deg||_2 <= 2^5; projections onto Y have at most 2^7 values.
  std::vector<ConcreteStatistic> stats = {
      Stat(q, "Y", "X", 2.0, 5.0),
      Stat(q, "Y", "Z", 2.0, 5.0),
      Stat(q, "", "Y", 1.0, 7.0),
  };

  auto bound = NormalPolymatroidBound(q.num_vars(), stats);
  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("polymatroid bound: 2^%.2f = %.0f tuples\n",
              bound.base.log2_bound, std::exp2(bound.base.log2_bound));

  std::printf("optimal step-function decomposition h* = sum alpha_W h_W:\n");
  for (VarSet w = 1; w < (1u << q.num_vars()); ++w) {
    if (bound.alpha[w] > 1e-9) {
      std::printf("  alpha{");
      for (int v : VarRange(w)) std::printf("%s", q.var_name(v).c_str());
      std::printf("} = %.3f\n", bound.alpha[w]);
    }
  }

  WorstCaseInstance wc = BuildWorstCaseDatabase(q, bound.alpha);
  std::printf("worst-case witness relation T: %zu rows, totally uniform: %s\n",
              wc.witness.NumRows(),
              IsTotallyUniform(wc.witness) ? "yes" : "no");
  for (const std::string& name : wc.database.Names()) {
    std::printf("  %s: %zu rows\n", name.c_str(),
                wc.database.Get(name).NumRows());
  }
  const uint64_t achieved = CountJoin(q, wc.database);
  std::printf("|Q(worst-case D)| = %llu  (2^%.2f of the 2^%.2f bound)\n",
              static_cast<unsigned long long>(achieved),
              std::log2(static_cast<double>(achieved)),
              bound.base.log2_bound);
  std::printf("=> the bound is tight for these (simple) statistics; to "
              "tighten it, collect more norms.\n");
  return 0;
}
