// Quickstart: build a tiny database, parse a join query, collect ℓp-norm
// statistics, and compute pessimistic cardinality bounds.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines of user code.
#include <cmath>
#include <cstdio>

#include "bounds/agm.h"
#include "bounds/normal_engine.h"
#include "estimator/traditional.h"
#include "exec/generic_join.h"
#include "query/parser.h"
#include "relation/catalog.h"
#include "stats/collector.h"

using namespace lpb;

int main() {
  // 1. A database: two binary relations with a skewed join column.
  Catalog db;
  Relation follows("follows", {"user", "celeb"});
  for (Value u = 0; u < 50; ++u) follows.AddRow({u, 0});  // everyone -> 0
  for (Value u = 0; u < 20; ++u) follows.AddRow({u, 1 + u % 5});
  db.Add(std::move(follows));

  Relation posts("posts", {"celeb", "post"});
  for (Value p = 0; p < 40; ++p) posts.AddRow({0, p});  // celeb 0 posts a lot
  for (Value p = 0; p < 10; ++p) posts.AddRow({1 + p % 5, 100 + p});
  db.Add(std::move(posts));

  // 2. A join query: the feed = follows ⋈ posts.
  Query q = *ParseQuery("Q(U, C, P) :- follows(U, C), posts(C, P)");
  std::printf("query: %s\n", q.ToString().c_str());

  // 3. Ground truth (worst-case-optimal join).
  const uint64_t truth = CountJoin(q, db);
  std::printf("true output size: %llu\n",
              static_cast<unsigned long long>(truth));

  // 4. Collect ℓp-norm statistics on the join columns.
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, 3.0, kInfNorm};
  auto stats = CollectStatistics(q, db, opt);
  std::printf("collected %zu statistics, e.g.:\n  %s\n", stats.size(),
              stats[1].label.c_str());

  // 5. Bounds: AGM ({1}), PANDA ({1,inf}), and the full lp-norm bound.
  auto agm = LpNormBound(q.num_vars(), FilterAgmStatistics(stats));
  auto panda = LpNormBound(q.num_vars(), FilterPandaStatistics(stats));
  auto ours = LpNormBound(q.num_vars(), stats);
  std::printf("AGM   {1}      bound: %.1f\n", std::exp2(agm.log2_bound));
  std::printf("PANDA {1,inf}  bound: %.1f\n", std::exp2(panda.log2_bound));
  std::printf("ours  {1..3,inf} bound: %.1f\n", std::exp2(ours.log2_bound));

  // 6. The witness inequality: which statistics the optimum used.
  std::printf("certificate weights (inequality (8) of the paper):\n");
  for (size_t i = 0; i < stats.size(); ++i) {
    if (ours.weights[i] > 1e-6) {
      std::printf("  w = %.3f on %s\n", ours.weights[i],
                  stats[i].label.c_str());
    }
  }

  // 7. A traditional (System-R style) estimate, for contrast: it can
  // underestimate, the bounds never do.
  std::printf("traditional estimate: %.1f (true %llu — bounds are sound, "
              "estimates are not)\n",
              TraditionalEstimate(q, db),
              static_cast<unsigned long long>(truth));
  return 0;
}
