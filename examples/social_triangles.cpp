// Domain example: triangle counting on a synthetic social network.
//
// A social-graph analytics job wants to budget memory for materializing all
// friendship triangles. Traditional estimators can be wildly off on skewed
// graphs; the ℓ2-norm bound (Eq. (4) of the paper) gives a sound and much
// tighter budget.
#include <cmath>
#include <cstdio>

#include "bounds/normal_engine.h"
#include "datagen/graph_gen.h"
#include "estimator/traditional.h"
#include "exec/generic_join.h"
#include "query/parser.h"
#include "stats/collector.h"

using namespace lpb;

int main() {
  GraphSpec spec;
  spec.name = "friends";
  spec.num_nodes = 20000;
  spec.num_edges = 90000;
  spec.zipf_theta = 0.85;  // a few hyper-connected users
  Catalog db;
  db.Add(GeneratePowerLawGraph(spec));

  Query q = *ParseQuery("friends(A,B), friends(B,C), friends(C,A)");
  std::printf("graph: %llu nodes, %zu directed edges\n",
              static_cast<unsigned long long>(spec.num_nodes),
              db.Get("friends").NumRows());

  const uint64_t triangles = CountJoin(q, db);
  std::printf("true (ordered) triangle count: %llu\n",
              static_cast<unsigned long long>(triangles));

  CollectorOptions opt;
  opt.norms = {1.0, 2.0, 3.0, 4.0, kInfNorm};
  auto stats = CollectStatistics(q, db, opt);

  auto agm = LpNormBound(q.num_vars(), FilterAgmStatistics(stats));
  auto panda = LpNormBound(q.num_vars(), FilterPandaStatistics(stats));
  auto ours = LpNormBound(q.num_vars(), stats);
  const double trad = TraditionalEstimateLog2(q, db);

  auto show = [&](const char* name, double log2v) {
    std::printf("%-22s %14.0f   (%.1fx the truth)\n", name,
                std::exp2(log2v),
                std::exp2(log2v - std::log2(double(triangles))));
  };
  show("AGM {1} bound:", agm.log2_bound);
  show("PANDA {1,inf} bound:", panda.log2_bound);
  show("lp {1..4,inf} bound:", ours.log2_bound);
  show("traditional estimate:", trad);

  std::printf(
      "\nmemory budget at 24 bytes/triangle: %.1f MiB (lp bound) vs %.1f "
      "MiB (AGM)\n",
      std::exp2(ours.log2_bound) * 24 / (1024.0 * 1024.0),
      std::exp2(agm.log2_bound) * 24 / (1024.0 * 1024.0));
  return 0;
}
