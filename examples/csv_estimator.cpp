// Domain example: a command-line cardinality advisor for your own data.
//
//   ./csv_estimator <query> <name=path.csv> [<name=path.csv> ...]
//   ./csv_estimator            # runs a built-in demo on generated CSVs
//
// Loads relations from CSV (SNAP-style tab files work too), evaluates every
// estimator in the library on the query, and prints a sensitivity report
// telling the user which statistics to maintain to tighten the bound.
#include <cstdio>
#include <filesystem>
#include <string>

#include "bounds/normal_engine.h"
#include "bounds/sensitivity.h"
#include "datagen/graph_gen.h"
#include "estimator/comparison.h"
#include "query/parser.h"
#include "relation/csv.h"
#include "stats/collector.h"

using namespace lpb;

namespace {

int RunDemo() {
  // Generate a small graph, save it as CSV, and reload it — the same path
  // a user would take with their own files.
  GraphSpec spec;
  spec.name = "edges";
  spec.num_nodes = 3000;
  spec.num_edges = 12000;
  spec.zipf_theta = 0.8;
  Relation edges = GeneratePowerLawGraph(spec);
  const std::string path =
      (std::filesystem::temp_directory_path() / "lpb_demo_edges.csv").string();
  SaveRelationCsv(edges, path);
  std::printf("demo: wrote %zu edges to %s\n", edges.NumRows(), path.c_str());

  std::string error;
  auto loaded = LoadRelationCsv("edges", path, {}, &error);
  std::remove(path.c_str());
  if (!loaded) {
    std::fprintf(stderr, "reload failed: %s\n", error.c_str());
    return 1;
  }
  Catalog db;
  db.Add(std::move(*loaded));

  Query q = *ParseQuery("edges(X,Y), edges(Y,Z)");
  std::printf("query: %s\n\n", q.ToString().c_str());
  std::printf("%s\n", FormatComparison(CompareEstimators(q, db)).c_str());

  CollectorOptions copt;
  copt.norms = {1.0, 2.0, 3.0, kInfNorm};
  auto stats = CollectStatistics(q, db, copt);
  auto bound = LpNormBound(q.num_vars(), stats);
  std::printf("sensitivity (which statistics the bound leans on):\n%s",
              FormatSensitivity(AnalyzeSensitivity(bound, stats), stats)
                  .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return RunDemo();

  std::string error;
  auto query = ParseQuery(argv[1], &error);
  if (!query) {
    std::fprintf(stderr, "bad query: %s\n", error.c_str());
    return 1;
  }
  Catalog db;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "expected name=path.csv, got %s\n", arg.c_str());
      return 1;
    }
    auto rel =
        LoadRelationCsv(arg.substr(0, eq), arg.substr(eq + 1), {}, &error);
    if (!rel) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    db.Add(std::move(*rel));
  }
  std::printf("%s\n",
              FormatComparison(CompareEstimators(*query, db)).c_str());
  return 0;
}
