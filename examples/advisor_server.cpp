// Minimal advisor-as-a-service demo: an AdvisorService absorbing
// concurrent single-estimate traffic from several client threads while a
// ticker thread churns statistics invalidation, then a printed summary of
// throughput, per-request latency (p50/p99/p999), admission-batch
// coalescing, and norm-cache efficacy.
//
// The point to observe in the output: requests arrive one at a time from
// every client, but the mean coalesced batch size stays well above 1 —
// the service is turning scalar traffic back into the advisor's cheap
// multi-RHS batch path. CI smoke-runs this binary.
//
// Usage: advisor_server [clients] [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/job_gen.h"
#include "estimator/advisor.h"
#include "serve/advisor_service.h"
#include "util/random.h"
#include "util/zipf.h"

using namespace lpb;

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 8;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.0;

  // Scaled-down JOB-style workload: 33 templates over an IMDB-like
  // snowflake. Clients pick templates Zipf-skewed, like a plan cache
  // where a few hot templates dominate.
  JobWorkloadOptions wopt;
  wopt.scale = 0.03;
  JobWorkload wl = GenerateJobWorkload(wopt);

  CardinalityAdvisor advisor(wl.catalog);
  for (const Query& q : wl.queries) advisor.EstimateLog2(q);  // pre-compile

  AdvisorServiceOptions sopt;
  sopt.workers = 1;
  sopt.max_batch = 256;
  sopt.batch_window_us = 100;
  AdvisorService service(advisor, sopt);

  // Wrap each template once so clients submit shared handles instead of
  // deep-copying a Query per request (see AdvisorService::SubmitLog2).
  std::vector<std::shared_ptr<const Query>> shared;
  shared.reserve(wl.queries.size());
  for (const Query& q : wl.queries) {
    shared.push_back(std::make_shared<const Query>(q));
  }

  std::printf("advisor_server: %d clients x %.1fs over %zu JOB templates, "
              "%d workers, max_batch=%d, window=%dus\n",
              clients, seconds, wl.queries.size(), sopt.workers,
              sopt.max_batch, sopt.batch_window_us);

  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(seconds);
  std::atomic<uint64_t> errors{0};

  // Clients: each keeps a small pipeline of outstanding single estimates
  // (an optimizer pricing a few candidates at once), so admission batches
  // can coalesce past the client count.
  std::vector<std::thread> threads;
  threads.reserve(clients + 1);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(9000 + c);
      ZipfSampler zipf(wl.queries.size(), 0.8);
      std::vector<std::future<double>> inflight;
      while (std::chrono::steady_clock::now() < deadline) {
        inflight.clear();
        for (int k = 0; k < 8; ++k) {
          inflight.push_back(service.SubmitLog2(shared[zipf.Sample(rng)]));
        }
        for (std::future<double>& f : inflight) {
          const double est = f.get();
          if (est != est) errors.fetch_add(1);  // NaN => rejected
        }
      }
    });
  }
  // Invalidation ticker: statistics churn concurrent with serving.
  std::atomic<bool> stop{false};
  uint64_t invalidations = 0;
  threads.emplace_back([&] {
    Rng rng(4242);
    const std::vector<std::string> names = wl.catalog.Names();
    while (!stop.load(std::memory_order_relaxed)) {
      service.Invalidate(names[rng.Uniform(names.size())]);
      ++invalidations;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (int c = 0; c < clients; ++c) threads[c].join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop.store(true);
  threads.back().join();
  service.Shutdown();

  const AdvisorServiceMetrics sm = service.metrics();
  const AdvisorMetrics am = advisor.metrics();
  const double hit_rate =
      am.norm_hits + am.norm_misses == 0
          ? 0.0
          : static_cast<double>(am.norm_hits) /
                static_cast<double>(am.norm_hits + am.norm_misses);
  std::printf("served %llu estimates in %.2fs  (%.0f est/s)\n",
              static_cast<unsigned long long>(sm.completed), elapsed,
              static_cast<double>(sm.completed) / elapsed);
  std::printf("latency  p50=%.0fus  p99=%.0fus  p999=%.0fus  max=%.0fus\n",
              sm.latency.p50_ns / 1e3, sm.latency.p99_ns / 1e3,
              sm.latency.p999_ns / 1e3,
              static_cast<double>(sm.latency.max_ns) / 1e3);
  std::printf("admission batching: %llu batches, mean %.1f req/batch, "
              "max %llu, dedup %.1fx, queue high-water %llu\n",
              static_cast<unsigned long long>(sm.batches), sm.MeanBatchSize(),
              static_cast<unsigned long long>(sm.max_coalesced),
              sm.DedupFactor(),
              static_cast<unsigned long long>(sm.max_queue_depth));
  std::printf("norm cache: %llu hits / %llu misses (%.1f%% hit rate), "
              "%llu shard-lock visits, %zu bytes; %llu invalidations\n",
              static_cast<unsigned long long>(am.norm_hits),
              static_cast<unsigned long long>(am.norm_misses),
              100.0 * hit_rate,
              static_cast<unsigned long long>(am.norm_shard_locks),
              advisor.CacheBytes(),
              static_cast<unsigned long long>(invalidations));
  if (sm.rejected != 0 || errors.load() != 0) {
    std::printf("UNEXPECTED: %llu rejected, %llu NaN results\n",
                static_cast<unsigned long long>(sm.rejected),
                static_cast<unsigned long long>(errors.load()));
    return 1;
  }
  return 0;
}
